package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/iscas"
	"repro/internal/obs"
	"repro/internal/serial"
	"repro/internal/vectors"
)

// startServer brings up a server on a loopback port and hands back a
// client; both are torn down with the test.
func startServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	s := New(cfg)
	if err := s.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s, NewClient("http://" + s.Addr())
}

func ctxT(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// oracle runs the serial simulator on the same workload a job spec
// describes, for result comparison.
func oracle(t *testing.T, circuit, model string, n int, seed int64) *faults.Result {
	t.Helper()
	c, err := iscas.Get(circuit)
	if err != nil {
		t.Fatalf("iscas.Get(%s): %v", circuit, err)
	}
	var u *faults.Universe
	switch model {
	case "stuck":
		u = faults.StuckCollapsed(c)
	case "transition":
		u = faults.Transition(c)
	default:
		t.Fatalf("oracle: model %q", model)
	}
	return serial.Simulate(u, vectors.Random(c, n, seed))
}

func TestJobMatchesSerialOracle(t *testing.T) {
	_, cl := startServer(t, Config{Workers: 2})
	ctx := ctxT(t)
	want := oracle(t, "s298", "stuck", 40, 7)
	for _, engine := range []string{"csim", "csim-V", "csim-M", "csim-MV", "csim-P", "csim-V2", "csim-grid", "csim-C", "PROOFS", "serial"} {
		v, err := cl.Run(ctx, JobSpec{Circuit: "s298", Engine: engine, Random: 40, Seed: 7}, time.Millisecond)
		if err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
		if v.Status != StatusDone {
			t.Fatalf("%s: status %s, error %q", engine, v.Status, v.Error)
		}
		r := v.Result
		if r == nil {
			t.Fatalf("%s: done with nil result", engine)
		}
		if r.Detected != want.NumDet || r.PotOnly != want.NumPotOnly() {
			t.Errorf("%s: det/pot = %d/%d, oracle %d/%d",
				engine, r.Detected, r.PotOnly, want.NumDet, want.NumPotOnly())
		}
		if r.Faults != len(want.Detected) {
			t.Errorf("%s: faults = %d, oracle universe %d", engine, r.Faults, len(want.Detected))
		}
	}
}

func TestVectorShardedAndGridJobShapes(t *testing.T) {
	_, cl := startServer(t, Config{Workers: 2})
	ctx := ctxT(t)
	want := oracle(t, "s298", "stuck", 40, 7)

	v, err := cl.Run(ctx, JobSpec{Circuit: "s298", Engine: "csim-V2", Windows: 3, Random: 40, Seed: 7}, time.Millisecond)
	if err != nil {
		t.Fatalf("csim-V2: %v", err)
	}
	if v.Result == nil || v.Result.Detected != want.NumDet {
		t.Fatalf("csim-V2 result %+v, oracle det %d", v.Result, want.NumDet)
	}
	if v.Result.Windows != 3 {
		t.Errorf("csim-V2 windows = %d, want 3", v.Result.Windows)
	}

	v, err = cl.Run(ctx, JobSpec{Circuit: "s298", Engine: "csim-grid", Workers: 2, Windows: 2, Random: 40, Seed: 7}, time.Millisecond)
	if err != nil {
		t.Fatalf("csim-grid: %v", err)
	}
	if v.Result == nil || v.Result.Detected != want.NumDet {
		t.Fatalf("csim-grid result %+v, oracle det %d", v.Result, want.NumDet)
	}
	if v.Result.Workers != 2 || v.Result.Windows != 2 {
		t.Errorf("csim-grid shape = %dx%d, want 2x2", v.Result.Workers, v.Result.Windows)
	}

	// Neither axis pinned: the scheduler plans and the result records it.
	v, err = cl.Run(ctx, JobSpec{Circuit: "s298", Engine: "csim-grid", Random: 40, Seed: 7}, time.Millisecond)
	if err != nil {
		t.Fatalf("auto csim-grid: %v", err)
	}
	if v.Result == nil || v.Result.Detected != want.NumDet {
		t.Fatalf("auto csim-grid result %+v, oracle det %d", v.Result, want.NumDet)
	}
	if v.Result.Workers < 1 || v.Result.Windows < 1 {
		t.Errorf("auto csim-grid did not record a shape: %+v", v.Result)
	}
}

func TestTransitionModel(t *testing.T) {
	_, cl := startServer(t, Config{Workers: 1})
	ctx := ctxT(t)
	want := oracle(t, "s344", "transition", 30, 3)
	v, err := cl.Run(ctx, JobSpec{Circuit: "s344", Model: "transition", Random: 30, Seed: 3}, time.Millisecond)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if v.Result == nil || v.Result.Detected != want.NumDet {
		t.Fatalf("transition result %+v, oracle det %d", v.Result, want.NumDet)
	}
}

func TestInlineBenchAndCacheHit(t *testing.T) {
	s, cl := startServer(t, Config{Workers: 1})
	ctx := ctxT(t)
	spec := JobSpec{Bench: iscas.S27Bench, BenchName: "mine", Random: 16, Seed: 2}
	v1, err := cl.Run(ctx, spec, time.Millisecond)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	if v1.Result == nil || v1.Result.Circuit != "mine" {
		t.Fatalf("first result: %+v", v1.Result)
	}
	if v1.Result.CacheHit {
		t.Error("first submission reported a cache hit")
	}
	v2, err := cl.Run(ctx, spec, time.Millisecond)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if !v2.Result.CacheHit {
		t.Error("resubmitted identical netlist missed the cache")
	}
	if v1.Result.Detected != v2.Result.Detected {
		t.Errorf("detections differ across cache hit: %d vs %d", v1.Result.Detected, v2.Result.Detected)
	}
	if got := s.cache.Len(); got != 1 {
		t.Errorf("cache holds %d entries, want 1", got)
	}
	m, err := cl.Metricsz(ctx)
	if err != nil {
		t.Fatalf("Metricsz: %v", err)
	}
	// One cache lookup per submission: the first misses, the second hits.
	if m["serve.cache_hits"].Value != 1 {
		t.Errorf("cache_hits = %d, want 1", m["serve.cache_hits"].Value)
	}
	if m["serve.cache_misses"].Value != 1 {
		t.Errorf("cache_misses = %d, want 1", m["serve.cache_misses"].Value)
	}
	if m["serve.jobs_completed"].Value != 2 {
		t.Errorf("jobs_completed = %d, want 2", m["serve.jobs_completed"].Value)
	}
}

func TestOversizedInlineNetlistIs413(t *testing.T) {
	_, cl := startServer(t, Config{Workers: 1, MaxInlineBytes: 2048})
	ctx := ctxT(t)
	big := strings.Repeat("# padding line\n", 1024)
	_, err := cl.Submit(ctx, JobSpec{Bench: iscas.S27Bench + big, Random: 4})
	var ae *APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized inline netlist: got %v, want 413", err)
	}
}

func TestMalformedBenchIsStructured400(t *testing.T) {
	_, cl := startServer(t, Config{Workers: 1})
	ctx := ctxT(t)
	// G9 is driven but never defined as input/gate: netcheck territory.
	bad := "INPUT(G1)\nOUTPUT(G2)\nG2 = AND(G1, G9)\n"
	_, err := cl.Submit(ctx, JobSpec{Bench: bad, Random: 4})
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("malformed bench: got %v, want *APIError", err)
	}
	if ae.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed bench: status %d, want 400", ae.StatusCode)
	}
	if len(ae.Problems) == 0 {
		t.Fatalf("malformed bench: no diagnostics in %v", ae)
	}
	found := false
	for _, p := range ae.Problems {
		if strings.Contains(p, "G9") {
			found = true
		}
	}
	if !found {
		t.Errorf("diagnostics do not mention the undriven net: %q", ae.Problems)
	}
}

func TestSpecValidation400(t *testing.T) {
	_, cl := startServer(t, Config{Workers: 1})
	ctx := ctxT(t)
	cases := []struct {
		name string
		spec JobSpec
	}{
		{"neither circuit nor bench", JobSpec{Random: 4}},
		{"both circuit and bench", JobSpec{Circuit: "s27", Bench: iscas.S27Bench, Random: 4}},
		{"unknown engine", JobSpec{Circuit: "s27", Engine: "csim-X", Random: 4}},
		{"unknown model", JobSpec{Circuit: "s27", Model: "bridging", Random: 4}},
		{"PROOFS transition", JobSpec{Circuit: "s27", Engine: "PROOFS", Model: "transition", Random: 4}},
		{"no vectors", JobSpec{Circuit: "s27"}},
		{"both vector specs", JobSpec{Circuit: "s27", Random: 4, Vectors: "0000\n"}},
		{"unknown suite circuit", JobSpec{Circuit: "s999999", Random: 4}},
		{"bad inline vectors", JobSpec{Circuit: "s27", Vectors: "01\n"}},
	}
	for _, tc := range cases {
		_, err := cl.Submit(ctx, tc.spec)
		var ae *APIError
		if !errors.As(err, &ae) || ae.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: got %v, want 400", tc.name, err)
		}
	}
}

// slowSpec is a job long enough to still be running when the test gets
// around to cancelling it (csim checks ctx between cycles, so
// cancellation is prompt regardless of length).
func slowSpec() JobSpec {
	return JobSpec{Circuit: "s5378", Engine: "csim", Random: 200000, Seed: 1}
}

func TestQueueFullIs429AndCancelFreesSlot(t *testing.T) {
	s, cl := startServer(t, Config{Workers: 1, QueueDepth: 1})
	ctx := ctxT(t)

	running, err := cl.Submit(ctx, slowSpec())
	if err != nil {
		t.Fatalf("submit running job: %v", err)
	}
	// Wait until the worker picks it up so the next submission queues.
	waitStatus(t, cl, running.ID, StatusRunning)

	queued, err := cl.Submit(ctx, slowSpec())
	if err != nil {
		t.Fatalf("submit queued job: %v", err)
	}
	if queued.Status != StatusQueued {
		t.Fatalf("second job status %s, want queued", queued.Status)
	}

	// Queue (depth 1) is now full: a third submission is rejected, fast.
	start := time.Now()
	_, err = cl.Submit(ctx, JobSpec{Circuit: "s27", Random: 4})
	var qf *QueueFullError
	if !errors.As(err, &qf) {
		t.Fatalf("overflow submit: got %v, want *QueueFullError", err)
	}
	if qf.RetryAfter < time.Second {
		t.Errorf("Retry-After %s, want >= 1s", qf.RetryAfter)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("overflow submission took %s; admission control must not block", elapsed)
	}

	// Cancelling the queued job frees its admission slot immediately.
	cv, err := cl.Cancel(ctx, queued.ID)
	if err != nil {
		t.Fatalf("cancel queued: %v", err)
	}
	if cv.Status != StatusCancelled {
		t.Fatalf("cancelled queued job status %s", cv.Status)
	}
	if _, err := cl.Submit(ctx, JobSpec{Circuit: "s27", Random: 4}); err != nil {
		t.Fatalf("submission after freeing the slot was rejected: %v", err)
	}

	// Cancel the long runner too and confirm it lands cancelled.
	if _, err := cl.Cancel(ctx, running.ID); err != nil {
		t.Fatalf("cancel running: %v", err)
	}
	rv := waitTerminal(t, cl, running.ID)
	if rv.Status != StatusCancelled {
		t.Fatalf("cancelled running job status %s, error %q", rv.Status, rv.Error)
	}
	_ = s
}

func TestJobTimeoutFails(t *testing.T) {
	_, cl := startServer(t, Config{Workers: 1})
	ctx := ctxT(t)
	spec := slowSpec()
	spec.TimeoutMS = 50
	v, err := cl.Run(ctx, spec, time.Millisecond)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if v.Status != StatusFailed || !strings.Contains(v.Error, "timeout") {
		t.Fatalf("timed-out job: status %s, error %q", v.Status, v.Error)
	}
}

func TestGracefulDrainFinishesInFlight(t *testing.T) {
	s, cl := startServer(t, Config{Workers: 2, QueueDepth: 16})
	ctx := ctxT(t)
	var ids []string
	for i := 0; i < 6; i++ {
		v, err := cl.Submit(ctx, JobSpec{Circuit: "s386", Random: 60, Seed: int64(i + 1)})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, v.ID)
	}
	dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	// Post-drain, every admitted job must have completed with a result.
	for _, id := range ids {
		s.mu.Lock()
		j := s.jobs[id]
		s.mu.Unlock()
		if j == nil {
			t.Fatalf("job %s evicted during drain", id)
		}
		v := j.view()
		if v.Status != StatusDone || v.Result == nil {
			t.Errorf("job %s after drain: status %s, error %q", id, v.Status, v.Error)
		}
	}
}

func TestDrainRejectsNewSubmissions(t *testing.T) {
	s, cl := startServer(t, Config{Workers: 1})
	ctx := ctxT(t)
	dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	_, err := cl.Submit(ctx, JobSpec{Circuit: "s27", Random: 4})
	var ae *APIError
	if err == nil {
		t.Fatal("submission during/after drain succeeded")
	}
	if errors.As(err, &ae) && ae.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("drained submit: status %d, want 503", ae.StatusCode)
	}
}

func TestConcurrentSubmissions(t *testing.T) {
	_, cl := startServer(t, Config{Workers: 4, QueueDepth: 128})
	ctx := ctxT(t)
	want := oracle(t, "s298", "stuck", 25, 9)
	const n = 32
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := cl.Run(ctx, JobSpec{Circuit: "s298", Random: 25, Seed: 9}, time.Millisecond)
			if err != nil {
				errs <- err
				return
			}
			if v.Status != StatusDone || v.Result == nil {
				errs <- fmt.Errorf("job %s: status %s, error %q", v.ID, v.Status, v.Error)
				return
			}
			if v.Result.Detected != want.NumDet {
				errs <- fmt.Errorf("job %s: det %d, oracle %d", v.ID, v.Result.Detected, want.NumDet)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	m, err := cl.Metricsz(ctx)
	if err != nil {
		t.Fatalf("Metricsz: %v", err)
	}
	if m["serve.jobs_completed"].Value != n {
		t.Errorf("jobs_completed = %d, want %d", m["serve.jobs_completed"].Value, n)
	}
	// One lookup per job at admission; only the very first can miss.
	if hits := m["serve.cache_hits"].Value; hits < n-1 {
		t.Errorf("cache_hits = %d, want >= %d", hits, n-1)
	}
}

func TestHealthAndReadyEndpoints(t *testing.T) {
	s, cl := startServer(t, Config{Workers: 1})
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(cl.BaseURL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", path, resp.StatusCode)
		}
	}
	dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	// The listener is down post-drain; readiness flipping during drain is
	// covered by TestDrainRejectsNewSubmissions via the 503 path.
}

func TestJobNotFound404(t *testing.T) {
	_, cl := startServer(t, Config{Workers: 1})
	ctx := ctxT(t)
	_, err := cl.Job(ctx, "j999")
	var ae *APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusNotFound {
		t.Fatalf("missing job: got %v, want 404", err)
	}
}

func TestRetentionEvictsOldFinishedJobs(t *testing.T) {
	s, cl := startServer(t, Config{Workers: 1, Retained: 3})
	ctx := ctxT(t)
	var first string
	for i := 0; i < 6; i++ {
		v, err := cl.Run(ctx, JobSpec{Circuit: "s27", Random: 4, Seed: int64(i + 1)}, time.Millisecond)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if i == 0 {
			first = v.ID
		}
	}
	s.mu.Lock()
	n := len(s.jobs)
	_, firstAlive := s.jobs[first]
	s.mu.Unlock()
	if n > 3 {
		t.Errorf("retained %d finished jobs, bound is 3", n)
	}
	if firstAlive {
		t.Errorf("oldest job %s survived retention eviction", first)
	}
	_, err := cl.Job(ctx, first)
	var ae *APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted job lookup: got %v, want 404", err)
	}
}

func TestObsTracerRecordsJobSpans(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer(reg)
	_, cl := startServer(t, Config{Workers: 1, Obs: &obs.Observer{Metrics: reg, Tracer: tr}})
	ctx := ctxT(t)
	if _, err := cl.Run(ctx, JobSpec{Circuit: "s27", Random: 4}, time.Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	found := false
	for name := range tr.PhaseDurations() {
		if strings.Contains(name, "j1/csim-MV/s27") {
			found = true
		}
	}
	if !found {
		t.Error("no job span recorded on the tracer")
	}
}

func waitStatus(t *testing.T, cl *Client, id string, want Status) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		v, err := cl.Job(context.Background(), id)
		if err != nil {
			t.Fatalf("poll %s: %v", id, err)
		}
		if v.Status == want {
			return
		}
		if v.Status.Terminal() {
			t.Fatalf("job %s reached %s while waiting for %s (error %q)", id, v.Status, want, v.Error)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
}

func waitTerminal(t *testing.T, cl *Client, id string) JobView {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	v, err := cl.Wait(ctx, id, time.Millisecond)
	if err != nil {
		t.Fatalf("wait %s: %v", id, err)
	}
	return v
}
