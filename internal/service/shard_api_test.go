package service

import (
	"errors"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/iscas"
	"repro/internal/netlist"
)

// TestFaultShardJobsMergeToOracle runs every shard of a K-way split as
// its own job — exactly the coordinator's dispatch pattern — and checks
// the merged detections against the serial oracle.
func TestFaultShardJobsMergeToOracle(t *testing.T) {
	_, cl := startServer(t, Config{Workers: 2})
	ctx := ctxT(t)
	want := oracle(t, "s344", "stuck", 40, 7)

	const k = 3
	ckt, err := iscas.Get("s344")
	if err != nil {
		t.Fatal(err)
	}
	merged := faults.NewResult(faults.StuckCollapsed(ckt))
	for shard := 0; shard < k; shard++ {
		v, err := cl.Run(ctx, JobSpec{
			Circuit: "s344", Engine: "csim-grid",
			FaultShard: shard, FaultShards: k, Windows: 2,
			Random: 40, Seed: 7, ReturnDetections: true,
		}, time.Millisecond)
		if err != nil {
			t.Fatalf("shard %d: %v", shard, err)
		}
		if v.Status != StatusDone || v.Result == nil {
			t.Fatalf("shard %d: status %s, error %q", shard, v.Status, v.Error)
		}
		dv := v.Result.Detections
		if dv == nil {
			t.Fatalf("shard %d: ReturnDetections set but no detections payload", shard)
		}
		if dv.NumDetected() != v.Result.Detected || dv.NumPotOnly() != v.Result.PotOnly {
			t.Fatalf("shard %d: payload counts %d/%d disagree with result %d/%d",
				shard, dv.NumDetected(), dv.NumPotOnly(), v.Result.Detected, v.Result.PotOnly)
		}
		if v.Result.Workers != k || v.Result.Windows != 2 {
			t.Errorf("shard %d: shape %dx%d, want %dx2", shard, v.Result.Workers, v.Result.Windows, k)
		}
		part, err := dv.Result(faults.StuckCollapsed(ckt))
		if err != nil {
			t.Fatalf("shard %d: reconstruct: %v", shard, err)
		}
		merged = faults.MergeResults(merged, part)
	}
	if diff := want.Diff(merged); diff != "" {
		t.Errorf("merged shard jobs differ from serial oracle:\n%s", diff)
	}
}

// TestFaultShardSpecValidation rejects malformed shard coordinates and
// shard requests on non-grid engines.
func TestFaultShardSpecValidation(t *testing.T) {
	_, cl := startServer(t, Config{Workers: 1})
	ctx := ctxT(t)
	for name, spec := range map[string]JobSpec{
		"wrong_engine": {Circuit: "s27", Engine: "csim", FaultShards: 2},
		"shard_oob":    {Circuit: "s27", Engine: "csim-grid", FaultShards: 2, FaultShard: 2},
		"negative":     {Circuit: "s27", Engine: "csim-grid", FaultShards: -1},
		"index_no_of":  {Circuit: "s27", Engine: "csim-grid", FaultShard: 1},
		"two_circuits": {Circuit: "s27", BenchKey: "suite:s27"},
		"no_circuit":   {Engine: "csim"},
	} {
		_, err := cl.Submit(ctx, spec)
		var ae *APIError
		if !errors.As(err, &ae) || ae.StatusCode != 400 {
			t.Errorf("%s: want 400, got %v", name, err)
		}
	}
}

// TestBenchKeyReference covers the ship-once protocol: a bench_key for
// an uncached circuit draws the stable bench-key-miss 400; after one
// inline submission the key resolves and the job runs.
func TestBenchKeyReference(t *testing.T) {
	_, cl := startServer(t, Config{Workers: 1})
	ctx := ctxT(t)
	ckt, err := iscas.Get("s27")
	if err != nil {
		t.Fatal(err)
	}
	text := netlist.BenchString(ckt)
	key := InlineKey(text)

	_, err = cl.Submit(ctx, JobSpec{BenchKey: key, Engine: "csim", Random: 8, Seed: 1})
	var ae *APIError
	if !errors.As(err, &ae) || ae.StatusCode != 400 {
		t.Fatalf("uncached bench_key: want 400, got %v", err)
	}
	if len(ae.Problems) != 1 || ae.Problems[0] != BenchKeyMissProblem {
		t.Fatalf("bench_key miss problems = %v, want [%s]", ae.Problems, BenchKeyMissProblem)
	}

	// Ship the netlist once; the cache now holds it under the same key.
	v, err := cl.Run(ctx, JobSpec{Bench: text, BenchName: "s27", Engine: "csim", Random: 8, Seed: 1}, time.Millisecond)
	if err != nil || v.Status != StatusDone {
		t.Fatalf("inline ship: %v / %+v", err, v)
	}

	v, err = cl.Run(ctx, JobSpec{BenchKey: key, Engine: "csim", Random: 8, Seed: 1}, time.Millisecond)
	if err != nil {
		t.Fatalf("bench_key run: %v", err)
	}
	if v.Status != StatusDone || v.Result == nil {
		t.Fatalf("bench_key run: status %s, error %q", v.Status, v.Error)
	}
	if !v.Result.CacheHit {
		t.Error("bench_key run did not count as a cache hit")
	}
	if v.Result.Detected != oracle(t, "s27", "stuck", 8, 1).NumDet {
		t.Errorf("bench_key run detected %d, oracle disagrees", v.Result.Detected)
	}
}
