package service

import (
	"sync"
	"time"

	"repro/internal/obs"
)

// sloTracker maintains the per-engine run-latency objectives and their
// burn-rate gauges. Each engine that has run at least one job gets:
//
//	serve.engine.<engine>.job_run_ns      histogram of its run times
//	serve.slo.<engine>.objective_ns       the configured objective
//	serve.slo.<engine>.p90_ns             observed p90 run latency
//	serve.slo.<engine>.burn_rate_milli    1000 * p90 / objective
//
// burn_rate_milli is the error-budget burn in milli-units: 1000 means
// the p90 sits exactly at the objective, above 1000 the engine is
// burning budget, well below it the objective has slack. The p90 comes
// from obs.Histogram.Quantile over the engine's own histogram — the
// same quantile code the load harness reports with.
type sloTracker struct {
	reg       *obs.Registry
	objective time.Duration
	byEngine  map[string]time.Duration

	mu sync.Mutex
	//simlint:guarded_by(mu)
	hists map[string]*obs.Histogram
}

// newSLOTracker wires the tracker to the registry. objective is the
// default per-engine target; overrides (keyed by engine name) take
// precedence.
func newSLOTracker(reg *obs.Registry, objective time.Duration, overrides map[string]time.Duration) *sloTracker {
	return &sloTracker{
		reg:       reg,
		objective: objective,
		byEngine:  overrides,
		hists:     map[string]*obs.Histogram{},
	}
}

// objectiveFor resolves the engine's latency objective.
func (t *sloTracker) objectiveFor(engine string) time.Duration {
	if d, ok := t.byEngine[engine]; ok && d > 0 {
		return d
	}
	return t.objective
}

// observe records one job's run time for its engine and refreshes the
// engine's SLO gauges.
func (t *sloTracker) observe(engine string, runNS int64) {
	t.mu.Lock()
	h, ok := t.hists[engine]
	if !ok {
		h = t.reg.Histogram("serve.engine."+engine+".job_run_ns", latencyBuckets)
		t.hists[engine] = h
	}
	t.mu.Unlock()
	h.Observe(runNS)
	obj := t.objectiveFor(engine)
	p90 := h.Quantile(0.90)
	t.reg.Gauge("serve.slo." + engine + ".objective_ns").Set(obj.Nanoseconds())
	t.reg.Gauge("serve.slo." + engine + ".p90_ns").Set(int64(p90))
	if obj > 0 {
		t.reg.Gauge("serve.slo." + engine + ".burn_rate_milli").Set(int64(1000 * p90 / float64(obj.Nanoseconds())))
	}
}
