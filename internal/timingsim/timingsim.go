// Package timingsim is the general arbitrary-delay simulation engine the
// paper's §2 sketches before specializing to zero delay: a two-phase
// event-driven simulator with a timing wheel. Gates carry arbitrary (but
// known) integer propagation delays; in the first phase matured events
// assign values to gate outputs, and in the second phase the fanout gates
// are evaluated and new events are posted.
//
// The zero-delay levelized scheme used by the fault simulators is the
// specialization of this engine to synchronous circuits; the equivalence
// (identical settled values at sample points for any delay assignment of a
// combinational network) is checked in the tests. The engine also injects
// single stuck-at faults, so delay-accurate faulty waveforms — including
// hazards invisible to zero-delay simulation — can be observed.
package timingsim

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/logic"
	"repro/internal/netlist"
)

// WheelSize is the timing-wheel circumference; delays must be smaller.
const WheelSize = 1024

// Sim is an arbitrary-delay event-driven simulator for the combinational
// part of a circuit. Flip-flop outputs are treated as externally assigned
// sources (use LatchFFs at clock boundaries).
type Sim struct {
	c     *netlist.Circuit
	delay []int32 // per gate, in time units

	val []logic.V
	now int64

	// Timing wheel: wheel[t % WheelSize] holds the list events maturing
	// at time t ("for unit delay simulation one can use a list event to
	// queue a collection of elements whose output values change at the
	// same time", §2).
	wheel   [][]event
	pending int

	// Second-phase local queue of gates to evaluate.
	evalQ   []netlist.GateID
	inEvalQ []bool

	fault *faults.Fault // optional injected stuck-at fault

	// Trace, when non-nil, observes every output change with its time.
	Trace func(t int64, g netlist.GateID, v logic.V)

	Events int // matured output-change events (instrumentation)
}

type event struct {
	gate netlist.GateID
	val  logic.V
}

// New builds a simulator with uniform unit delays.
func New(c *netlist.Circuit) *Sim {
	d := make([]int32, len(c.Gates))
	for i := range d {
		d[i] = 1
	}
	s, err := NewWithDelays(c, d)
	if err != nil {
		panic(err) // unit delays are always valid
	}
	return s
}

// NewWithDelays builds a simulator with per-gate delays (sources may have
// delay 0; combinational gates must have delay >= 1).
func NewWithDelays(c *netlist.Circuit, delay []int32) (*Sim, error) {
	if len(delay) != len(c.Gates) {
		return nil, fmt.Errorf("timingsim: %d delays for %d gates", len(delay), len(c.Gates))
	}
	for i, d := range delay {
		if c.Gates[i].IsSource() {
			continue
		}
		if d < 1 || d >= WheelSize {
			return nil, fmt.Errorf("timingsim: gate %s delay %d outside [1,%d)",
				c.Gates[i].Name, d, WheelSize-1)
		}
	}
	s := &Sim{
		c:       c,
		delay:   append([]int32(nil), delay...),
		val:     make([]logic.V, len(c.Gates)),
		wheel:   make([][]event, WheelSize),
		inEvalQ: make([]bool, len(c.Gates)),
	}
	for i := range s.val {
		s.val[i] = logic.X
	}
	return s, nil
}

// Now returns the current simulation time.
func (s *Sim) Now() int64 { return s.now }

// Val returns the current value of a gate output.
func (s *Sim) Val(g netlist.GateID) logic.V { return s.val[g] }

// InjectFault installs a single stuck-at fault (nil clears). Values
// already computed are not retroactively changed; inject before driving.
func (s *Sim) InjectFault(f *faults.Fault) error {
	if f != nil && !f.Kind.Stuck() {
		return fmt.Errorf("timingsim: only stuck-at faults are injectable, got %v", f.Kind)
	}
	s.fault = f
	if f != nil && f.Pin == faults.OutPin {
		s.setNow(f.Gate, f.Kind.StuckValue())
	}
	return nil
}

// SetSource assigns a primary input or flip-flop output at the current
// time; the change propagates as events.
func (s *Sim) SetSource(g netlist.GateID, v logic.V) error {
	if !s.c.Gate(g).IsSource() {
		return fmt.Errorf("timingsim: %s is not a source", s.c.Gate(g).Name)
	}
	if s.fault != nil && s.fault.Gate == g && s.fault.Pin == faults.OutPin {
		v = s.fault.Kind.StuckValue()
	}
	s.setNow(g, v)
	return nil
}

// setNow applies an output value at the current time and schedules the
// second phase for the fanout gates.
func (s *Sim) setNow(g netlist.GateID, v logic.V) {
	v = v.Norm()
	if s.val[g] == v {
		return
	}
	s.val[g] = v
	s.Events++
	if s.Trace != nil {
		s.Trace(s.now, g, v)
	}
	for _, fo := range s.c.Gate(g).Fanout {
		s.enqueueEval(fo)
	}
}

func (s *Sim) enqueueEval(g netlist.GateID) {
	if s.c.Gate(g).IsSource() || s.inEvalQ[g] {
		return
	}
	s.inEvalQ[g] = true
	s.evalQ = append(s.evalQ, g)
}

// phase2 evaluates every gate affected at the current time and posts
// output events after each gate's delay.
func (s *Sim) phase2() {
	var in [logic.MaxPins]logic.V
	for qi := 0; qi < len(s.evalQ); qi++ {
		g := s.evalQ[qi]
		s.inEvalQ[g] = false
		gt := s.c.Gate(g)
		for j, f := range gt.Fanin {
			v := s.val[f]
			if s.fault != nil && s.fault.Gate == g && s.fault.Pin == j {
				v = s.fault.Kind.StuckValue()
			}
			in[j] = v
		}
		out := logic.Eval(gt.Op, in[:len(gt.Fanin)])
		if s.fault != nil && s.fault.Gate == g && s.fault.Pin == faults.OutPin {
			out = s.fault.Kind.StuckValue()
		}
		s.post(g, out, int64(s.delay[g]))
	}
	s.evalQ = s.evalQ[:0]
}

// post schedules an output-change event after the given delay. A newer
// evaluation for the same gate supersedes any pending event at a later
// slot only implicitly: when the pending event matures, a no-change
// assignment is discarded (inertial-delay approximation).
func (s *Sim) post(g netlist.GateID, v logic.V, delay int64) {
	t := s.now + delay
	slot := int(t % WheelSize)
	s.wheel[slot] = append(s.wheel[slot], event{gate: g, val: v})
	s.pending++
}

// Step advances time to the next slot with matured events and processes
// one full two-phase round. It reports whether any events remain.
func (s *Sim) Step() bool {
	if s.pending == 0 && len(s.evalQ) > 0 {
		s.phase2()
	}
	if s.pending == 0 {
		return false
	}
	// Advance to the next nonempty slot (bounded by the wheel size).
	for i := 0; i < WheelSize; i++ {
		s.now++
		slot := int(s.now % WheelSize)
		if len(s.wheel[slot]) == 0 {
			continue
		}
		// Phase 1: assign matured values.
		evs := s.wheel[slot]
		s.wheel[slot] = nil
		s.pending -= len(evs)
		for _, ev := range evs {
			s.setNow(ev.gate, ev.val)
		}
		// Phase 2: evaluate affected gates.
		s.phase2()
		return s.pending > 0 || len(s.evalQ) > 0
	}
	return s.pending > 0
}

// Settle runs until no events remain or maxSteps rounds have run. It
// reports whether the network quiesced.
func (s *Sim) Settle(maxSteps int) bool {
	if len(s.evalQ) > 0 {
		s.phase2()
	}
	for i := 0; i < maxSteps; i++ {
		if !s.Step() {
			return s.pending == 0 && len(s.evalQ) == 0
		}
	}
	return s.pending == 0 && len(s.evalQ) == 0
}

// ApplyVector assigns all primary inputs and settles the network.
func (s *Sim) ApplyVector(vec []logic.V, maxSteps int) (bool, error) {
	if len(vec) != len(s.c.PIs) {
		return false, fmt.Errorf("timingsim: vector width %d, want %d", len(vec), len(s.c.PIs))
	}
	for i, pi := range s.c.PIs {
		if err := s.SetSource(pi, vec[i]); err != nil {
			return false, err
		}
	}
	return s.Settle(maxSteps), nil
}

// LatchFFs samples every flip-flop's D input (with D-pin fault forcing)
// and assigns the outputs, as a synchronous clock edge.
func (s *Sim) LatchFFs() {
	next := make([]logic.V, len(s.c.DFFs))
	for i, ff := range s.c.DFFs {
		d := s.val[s.c.Gate(ff).Fanin[0]]
		if s.fault != nil && s.fault.Gate == ff && s.fault.Pin == 0 {
			d = s.fault.Kind.StuckValue()
		}
		next[i] = d
	}
	for i, ff := range s.c.DFFs {
		v := next[i]
		if s.fault != nil && s.fault.Gate == ff && s.fault.Pin == faults.OutPin {
			v = s.fault.Kind.StuckValue()
		}
		s.setNow(ff, v)
	}
}

// Outputs returns the current PO values.
func (s *Sim) Outputs() []logic.V {
	out := make([]logic.V, len(s.c.POs))
	for i, po := range s.c.POs {
		out[i] = s.val[po]
	}
	return out
}
