package timingsim

import (
	"math/rand"
	"testing"

	"repro/internal/faults"
	"repro/internal/goodsim"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/vectors"
)

const s27Bench = `
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
`

func mustParse(t *testing.T, name, text string) *netlist.Circuit {
	t.Helper()
	c, err := netlist.ParseBenchString(name, text)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestUnitDelayMatchesZeroDelayAtSamplePoints: for a synchronous circuit,
// the settled values at each clock boundary must agree with the zero-delay
// levelized simulator, for unit delays.
func TestUnitDelayMatchesZeroDelay(t *testing.T) {
	c := mustParse(t, "s27", s27Bench)
	ts := New(c)
	zs := goodsim.New(c)
	vs := vectors.Random(c, 100, 11)
	for cyc, vec := range vs.Vecs {
		ok, err := ts.ApplyVector(vec, 10000)
		if err != nil || !ok {
			t.Fatalf("cycle %d: settle failed: %v", cyc, err)
		}
		zs.Apply(vec)
		for i := range c.Gates {
			id := netlist.GateID(i)
			if ts.Val(id) != zs.Val(id) {
				t.Fatalf("cycle %d gate %s: timing %v, zero-delay %v",
					cyc, c.Gate(id).Name, ts.Val(id), zs.Val(id))
			}
		}
		ts.LatchFFs()
		if !ts.Settle(10000) {
			t.Fatalf("cycle %d: post-clock settle failed", cyc)
		}
		zs.Clock()
	}
}

// TestSettledValuesDelayIndependent: the steady state of a combinational
// network does not depend on the delay assignment.
func TestSettledValuesDelayIndependent(t *testing.T) {
	c := mustParse(t, "s27", s27Bench)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5; trial++ {
		d := make([]int32, len(c.Gates))
		for i := range d {
			d[i] = int32(1 + rng.Intn(20))
		}
		ts, err := NewWithDelays(c, d)
		if err != nil {
			t.Fatal(err)
		}
		zs := goodsim.New(c)
		vs := vectors.Random(c, 40, int64(trial))
		for cyc, vec := range vs.Vecs {
			ok, err := ts.ApplyVector(vec, 100000)
			if err != nil || !ok {
				t.Fatalf("trial %d cycle %d: settle failed: %v", trial, cyc, err)
			}
			zs.Apply(vec)
			for i := range c.Gates {
				id := netlist.GateID(i)
				if ts.Val(id) != zs.Val(id) {
					t.Fatalf("trial %d cycle %d gate %s: %v vs %v",
						trial, cyc, c.Gate(id).Name, ts.Val(id), zs.Val(id))
				}
			}
			ts.LatchFFs()
			ts.Settle(100000)
			zs.Clock()
		}
	}
}

// TestStaticHazardVisible: a slow inverter on one arm of OR(a, NOT(a))
// produces a transient 0 pulse that zero-delay simulation cannot show —
// the reason concurrent simulation's arbitrary-delay capability matters.
func TestStaticHazardVisible(t *testing.T) {
	c := mustParse(t, "hazard", "INPUT(a)\nOUTPUT(z)\nna = NOT(a)\nz = OR(a, na)\n")
	d := make([]int32, len(c.Gates))
	for i := range d {
		d[i] = 1
	}
	d[c.MustByName("na")] = 3 // slow inverter
	ts, err := NewWithDelays(c, d)
	if err != nil {
		t.Fatal(err)
	}
	var zTrace []logic.V
	z := c.MustByName("z")
	ts.Trace = func(_ int64, g netlist.GateID, v logic.V) {
		if g == z {
			zTrace = append(zTrace, v)
		}
	}
	// Establish a=1 (z=1), then drop a: z glitches 1 -> 0 -> 1.
	one := []logic.V{logic.One}
	zero := []logic.V{logic.Zero}
	if ok, _ := ts.ApplyVector(one, 1000); !ok {
		t.Fatal("settle failed")
	}
	zTrace = nil
	if ok, _ := ts.ApplyVector(zero, 1000); !ok {
		t.Fatal("settle failed")
	}
	want := []logic.V{logic.Zero, logic.One}
	if len(zTrace) != 2 || zTrace[0] != want[0] || zTrace[1] != want[1] {
		t.Errorf("z trace = %v, want glitch %v", zTrace, want)
	}
	if ts.Val(z) != logic.One {
		t.Errorf("settled z = %v, want 1", ts.Val(z))
	}
	// Zero-delay reference shows no glitch: z stays 1.
	zs := goodsim.New(c)
	zs.Apply(one)
	zs.Apply(zero)
	if zs.Val(z) != logic.One {
		t.Errorf("zero-delay z = %v, want 1", zs.Val(z))
	}
}

// TestFaultInjectionMatchesSerialAtSamplePoints: settled faulty values must
// match the zero-delay serial fault machine at every clock boundary.
func TestFaultInjectionMatchesSerial(t *testing.T) {
	c := mustParse(t, "ff", "INPUT(a)\nINPUT(b)\nOUTPUT(z)\nq = DFF(n)\nn = NAND(a, q)\nz = XOR(n, b)\n")
	u := faults.StuckAll(c)
	vs := vectors.Random(c, 60, 9)
	for fi := range u.Faults {
		f := &u.Faults[fi]
		ts := New(c)
		if err := ts.InjectFault(f); err != nil {
			t.Fatal(err)
		}
		ref := newSerialRef(c, f)
		for cyc, vec := range vs.Vecs {
			if ok, err := ts.ApplyVector(vec, 10000); err != nil || !ok {
				t.Fatalf("fault %s cycle %d: settle failed", f.Name(c), cyc)
			}
			want := ref.cycle(vec)
			got := ts.Outputs()
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("fault %s cycle %d PO %d: timing %v, serial %v",
						f.Name(c), cyc, i, got[i], want[i])
				}
			}
			ts.LatchFFs()
			ts.Settle(10000)
		}
	}
}

// serialRef is a minimal copy of the serial machine semantics for
// cross-checking (stuck-at only).
type serialRef struct {
	c   *netlist.Circuit
	f   *faults.Fault
	val []logic.V
}

func newSerialRef(c *netlist.Circuit, f *faults.Fault) *serialRef {
	r := &serialRef{c: c, f: f, val: make([]logic.V, len(c.Gates))}
	for i := range r.val {
		r.val[i] = logic.X
	}
	if f.Pin == faults.OutPin {
		r.val[f.Gate] = f.Kind.StuckValue()
	}
	return r
}

func (r *serialRef) cycle(vec []logic.V) []logic.V {
	force := func(g netlist.GateID, pin int, v logic.V) logic.V {
		if r.f.Gate == g && r.f.Pin == pin {
			return r.f.Kind.StuckValue()
		}
		return v
	}
	for i, pi := range r.c.PIs {
		r.val[pi] = force(pi, faults.OutPin, vec[i])
	}
	var in [logic.MaxPins]logic.V
	for _, lv := range r.c.Levels {
		for _, id := range lv {
			g := r.c.Gate(id)
			for j, fi := range g.Fanin {
				in[j] = force(id, j, r.val[fi])
			}
			r.val[id] = force(id, faults.OutPin, logic.Eval(g.Op, in[:len(g.Fanin)]))
		}
	}
	out := make([]logic.V, len(r.c.POs))
	for i, po := range r.c.POs {
		out[i] = r.val[po]
	}
	next := make([]logic.V, len(r.c.DFFs))
	for i, ff := range r.c.DFFs {
		next[i] = force(ff, 0, r.val[r.c.Gate(ff).Fanin[0]])
	}
	for i, ff := range r.c.DFFs {
		r.val[ff] = force(ff, faults.OutPin, next[i])
	}
	return out
}

func TestDelayValidation(t *testing.T) {
	c := mustParse(t, "b", "INPUT(a)\nOUTPUT(z)\nz = BUFF(a)\n")
	if _, err := NewWithDelays(c, []int32{0}); err == nil {
		t.Error("wrong delay-slice length accepted")
	}
	bad := make([]int32, len(c.Gates))
	if _, err := NewWithDelays(c, bad); err == nil {
		t.Error("zero gate delay accepted")
	}
	bad[c.MustByName("z")] = WheelSize
	if _, err := NewWithDelays(c, bad); err == nil {
		t.Error("delay >= WheelSize accepted")
	}
}

func TestSetSourceRejectsGate(t *testing.T) {
	c := mustParse(t, "b", "INPUT(a)\nOUTPUT(z)\nz = BUFF(a)\n")
	s := New(c)
	if err := s.SetSource(c.MustByName("z"), logic.One); err == nil {
		t.Error("SetSource on a combinational gate accepted")
	}
}

func TestInjectRejectsTransition(t *testing.T) {
	c := mustParse(t, "b", "INPUT(a)\nOUTPUT(z)\nz = BUFF(a)\n")
	s := New(c)
	f := &faults.Fault{Gate: c.MustByName("z"), Pin: 0, Kind: faults.STR}
	if err := s.InjectFault(f); err == nil {
		t.Error("transition fault injection accepted")
	}
}
