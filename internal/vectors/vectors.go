// Package vectors holds test-vector sets: ordered sequences of primary
// input assignments applied one per clock cycle to a synchronous circuit.
package vectors

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"strings"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// Set is an ordered test sequence for a specific circuit's PIs: Vecs[t][i]
// is the value applied to the circuit's i-th primary input at cycle t.
type Set struct {
	NumPIs int
	Vecs   [][]logic.V
}

// Len returns the number of vectors.
func (s *Set) Len() int { return len(s.Vecs) }

// Append adds a vector, which must have NumPIs entries.
func (s *Set) Append(v []logic.V) {
	if len(v) != s.NumPIs {
		panic(fmt.Sprintf("vectors: vector width %d, want %d", len(v), s.NumPIs))
	}
	s.Vecs = append(s.Vecs, v)
}

// Slice returns a set containing the first n vectors (sharing storage).
func (s *Set) Slice(n int) *Set {
	if n > len(s.Vecs) {
		n = len(s.Vecs)
	}
	return &Set{NumPIs: s.NumPIs, Vecs: s.Vecs[:n]}
}

// New returns an empty set for a circuit with numPIs primary inputs.
func New(numPIs int) *Set { return &Set{NumPIs: numPIs} }

// Random generates n uniformly random binary vectors for circuit c using a
// deterministic seed.
func Random(c *netlist.Circuit, n int, seed int64) *Set {
	rng := rand.New(rand.NewSource(seed))
	s := New(len(c.PIs))
	for t := 0; t < n; t++ {
		v := make([]logic.V, s.NumPIs)
		for i := range v {
			v[i] = logic.V(rng.Intn(2))
		}
		s.Vecs = append(s.Vecs, v)
	}
	return s
}

// Parse reads a vector file: one vector per line, characters 0/1/X, one
// column per primary input; '#' starts a comment; blank lines ignored.
func Parse(r io.Reader, numPIs int) (*Set, error) {
	s := New(numPIs)
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = text[:i]
		}
		text = strings.TrimSpace(text)
		if text == "" {
			continue
		}
		if len(text) != numPIs {
			return nil, fmt.Errorf("vectors: line %d has %d columns, want %d", line, len(text), numPIs)
		}
		v := make([]logic.V, numPIs)
		for i := 0; i < numPIs; i++ {
			val, err := logic.ParseV(text[i])
			if err != nil {
				return nil, fmt.Errorf("vectors: line %d: %w", line, err)
			}
			v[i] = val
		}
		s.Vecs = append(s.Vecs, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

// ParseString parses vector text from a string.
func ParseString(text string, numPIs int) (*Set, error) {
	return Parse(strings.NewReader(text), numPIs)
}

// Write serializes the set in the format Parse reads.
func Write(w io.Writer, s *Set) error {
	bw := bufio.NewWriter(w)
	for _, v := range s.Vecs {
		for _, x := range v {
			bw.WriteString(x.String())
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// String renders the set as vector text.
func (s *Set) String() string {
	var sb strings.Builder
	if err := Write(&sb, s); err != nil {
		panic(err)
	}
	return sb.String()
}
