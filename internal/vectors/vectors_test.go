package vectors

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/logic"
	"repro/internal/netlist"
)

func twoPI(t *testing.T) *netlist.Circuit {
	t.Helper()
	c, err := netlist.ParseBenchString("two", "INPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = AND(a, b)\n")
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestParseBasic(t *testing.T) {
	s, err := ParseString("01\n1X\n # comment line\n\nX0 # trailing\n", 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Fatalf("parsed %d vectors, want 3", s.Len())
	}
	want := [][]logic.V{
		{logic.Zero, logic.One},
		{logic.One, logic.X},
		{logic.X, logic.Zero},
	}
	for i, w := range want {
		for j := range w {
			if s.Vecs[i][j] != w[j] {
				t.Errorf("vec %d col %d = %v, want %v", i, j, s.Vecs[i][j], w[j])
			}
		}
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := ParseString("011\n", 2); err == nil {
		t.Error("wrong width accepted")
	}
	if _, err := ParseString("0Z\n", 2); err == nil {
		t.Error("invalid character accepted")
	}
}

func TestRoundTrip(t *testing.T) {
	c := twoPI(t)
	s := Random(c, 50, 9)
	s2, err := ParseString(s.String(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if s2.String() != s.String() {
		t.Error("round trip changed vectors")
	}
}

func TestRandomDeterministicAndBinary(t *testing.T) {
	c := twoPI(t)
	a := Random(c, 100, 5)
	b := Random(c, 100, 5)
	if a.String() != b.String() {
		t.Error("same seed, different vectors")
	}
	d := Random(c, 100, 6)
	if a.String() == d.String() {
		t.Error("different seeds, same vectors")
	}
	for _, v := range a.Vecs {
		for _, x := range v {
			if !x.Binary() {
				t.Fatal("Random emitted a non-binary value")
			}
		}
	}
}

func TestAppendPanicsOnWidth(t *testing.T) {
	s := New(3)
	defer func() {
		if recover() == nil {
			t.Error("width mismatch did not panic")
		}
	}()
	s.Append([]logic.V{logic.One})
}

func TestSlice(t *testing.T) {
	c := twoPI(t)
	s := Random(c, 10, 1)
	if got := s.Slice(4).Len(); got != 4 {
		t.Errorf("Slice(4).Len() = %d", got)
	}
	if got := s.Slice(99).Len(); got != 10 {
		t.Errorf("Slice(99).Len() = %d", got)
	}
}

// Property: any parsed set serializes to text that reparses identically.
func TestParseWriteProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		width := int(raw[0]%5) + 1
		var sb strings.Builder
		for i := 1; i+width <= len(raw); i += width {
			for j := 0; j < width; j++ {
				sb.WriteByte("01X"[raw[i+j]%3])
			}
			sb.WriteByte('\n')
		}
		s, err := ParseString(sb.String(), width)
		if err != nil {
			return false
		}
		s2, err := ParseString(s.String(), width)
		if err != nil {
			return false
		}
		return s.String() == s2.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
